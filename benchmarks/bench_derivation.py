"""E2/E3 — the Protocol Generator itself.

Times the full pipeline (flatten, disable-normalize, number, attribute,
check, derive-per-place, simplify) on the paper's examples and on
parameter sweeps over place count and specification size.  The paper
reports only that its Prolog PG was "effective"; these benchmarks give
the reproduction a concrete derivation-cost profile.
"""

import pytest

from repro import workloads
from repro.core.attributes import evaluate_attributes, number_nodes
from repro.core.derivation import Deriver
from repro.core.generator import ProtocolGenerator, derive_protocol


@pytest.mark.parametrize(
    "name,text",
    [
        ("example2", workloads.EXAMPLE2_COUNTING),
        ("example3", workloads.EXAMPLE3_FILE_TRANSFER),
        ("example4", workloads.EXAMPLE4_SEQUENCE),
        ("example7", workloads.EXAMPLE7_TWO_INSTANCES),
        ("transport", workloads.TRANSPORT_SESSION),
    ],
)
def test_derive_paper_examples(benchmark, name, text):
    result = benchmark(derive_protocol, text)
    assert result.entities


@pytest.mark.parametrize("places", [2, 4, 8, 16])
def test_derive_pipeline_scaling_places(benchmark, places):
    spec = workloads.pipeline(places, rounds=2)
    result = benchmark(derive_protocol, spec)
    assert len(result.entities) == places


@pytest.mark.parametrize("rounds", [1, 4, 16])
def test_derive_pipeline_scaling_length(benchmark, rounds):
    spec = workloads.pipeline(4, rounds=rounds)
    result = benchmark(derive_protocol, spec)
    assert len(result.entities) == 4


@pytest.mark.parametrize("length", [2, 8, 32])
def test_derive_process_chain_scaling(benchmark, length):
    spec = workloads.process_chain(length)
    result = benchmark(derive_protocol, spec)
    assert result.entities


def test_attribute_evaluation_alone(benchmark):
    generator = ProtocolGenerator()
    prepared = generator.prepare(workloads.TRANSPORT_SESSION)

    def evaluate():
        return evaluate_attributes(prepared)

    table = benchmark(evaluate)
    assert table.all_places == frozenset({1, 2})


def test_single_place_projection_alone(benchmark, example3_result):
    deriver = Deriver(example3_result.prepared, example3_result.attrs)
    entity = benchmark(deriver.derive, 2)
    assert entity.definitions


def test_numbering_alone(benchmark):
    spec = workloads.pipeline(8, rounds=8)
    from repro.lotos.scope import flatten_spec

    flat = flatten_spec(spec)
    numbered = benchmark(number_nodes, flat)
    assert numbered is not None


def test_derive_mixed_choice_extension(benchmark):
    """The R1-relaxation arbiter protocol (docs/algorithm.md)."""
    service = "SPEC (a1; x3; exit) [] (b2; y3; exit) ENDSPEC"

    def run():
        return derive_protocol(service, mixed_choice=True)

    result = benchmark(run)
    assert result.places == [1, 2, 3]


def test_derive_1986_subset_mode(benchmark):
    generator = ProtocolGenerator(subset_1986=True)
    service = "SPEC (a1; b2; exit) [] (c1; d2; exit) ENDSPEC"

    def run():
        return generator.derive(service)

    result = benchmark(run)
    assert result.entities
