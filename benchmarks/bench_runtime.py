"""Distributed-execution throughput: entities + medium under schedules.

Not a paper artifact per se, but the substrate cost profile every other
experiment rests on: how fast the composed system steps, how the two
queue disciplines compare, and how occurrence tracking affects state
churn.
"""

import pytest

from repro import workloads
from repro.core.generator import derive_protocol
from repro.runtime import build_system, random_run
from repro.runtime.executor import run_many


@pytest.mark.parametrize("discipline", ["fifo", "selective"])
def test_example3_schedule_throughput(benchmark, example3_result, discipline):
    def run():
        system = build_system(
            example3_result.entities,
            discipline=discipline,
            require_empty_at_exit=False,
        )
        return run_many(system, runs=5, max_steps=400)

    runs = benchmark(run)
    assert all(not r.deadlocked for r in runs)


def test_counting_protocol_deep_run(benchmark, example2_result):
    def run():
        system = build_system(example2_result.entities)
        target = 30
        done = [0]

        def steer(state, transitions):
            a1s = [i for i, (l, _) in enumerate(transitions) if str(l) == "a1"]
            others = [i for i, (l, _) in enumerate(transitions) if str(l) != "a1"]
            if a1s and done[0] < target:
                done[0] += 1
                return a1s[0]
            if others:
                return others[0]
            done[0] += 1
            return a1s[-1]

        result = random_run(system, seed=1, max_steps=5_000, chooser=steer)
        done[0] = 0
        assert result.terminated
        return result

    run = benchmark(run)
    names = [e.name for e in run.trace]
    assert names.count("a") == names.count("b") >= 30


@pytest.mark.parametrize("places", [3, 6, 9])
def test_pipeline_throughput_scaling(benchmark, places):
    result = derive_protocol(workloads.pipeline(places, rounds=3))

    def run():
        system = build_system(result.entities)
        return random_run(system, seed=0, max_steps=5_000)

    run_result = benchmark(run)
    assert run_result.terminated


@pytest.mark.parametrize("use_occurrences", [True, False])
def test_occurrence_tracking_cost(benchmark, use_occurrences):
    result = derive_protocol(workloads.recursion_tower(3))

    def run():
        system = build_system(result.entities, use_occurrences=use_occurrences)
        return run_many(system, runs=5, max_steps=800)

    runs = benchmark(run)
    assert all(r.terminated or r.truncated for r in runs)


def test_transport_sessions(benchmark, transport_result):
    def run():
        system = build_system(
            transport_result.entities,
            discipline="selective",
            require_empty_at_exit=False,
        )
        return run_many(system, runs=5, max_steps=1_000)

    runs = benchmark(run)
    assert all(not r.deadlocked for r in runs)
