"""Shared benchmark fixtures and the ``--bench-json`` reporter.

Each benchmark module regenerates one of the paper's evaluation
artifacts (see DESIGN.md's experiment index); the fixtures here cache the
expensive derivations so timing loops measure only the operation under
study.

``pytest benchmarks/ --bench-json=PATH`` additionally dumps one JSON
document (schema ``repro.obs.bench/v1``) with every benchmark's
wall-clock call time plus a snapshot of the obs metrics the exercised
code published — the raw material of the repo's perf trajectory.
"""

import json

import pytest

from repro import workloads
from repro.core.generator import derive_protocol


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help="write per-benchmark wall-times and an obs metrics snapshot "
        "to PATH as JSON (schema repro.obs.bench/v1)",
    )


def pytest_configure(config):
    if config.getoption("--bench-json"):
        from repro.obs.metrics import MetricsRegistry, set_registry

        # A live registry for the whole session, so the code under
        # benchmark publishes its counters into the report.
        config._bench_records = []
        config._bench_registry = MetricsRegistry()
        set_registry(config._bench_registry)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    records = getattr(item.config, "_bench_records", None)
    if records is None:
        return
    report = outcome.get_result()
    if report.when == "call":
        records.append(
            {
                "nodeid": report.nodeid,
                "wall_time_s": round(report.duration, 6),
                "outcome": report.outcome,
            }
        )


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    records = getattr(config, "_bench_records", None)
    if records is None:
        return
    from repro.obs.metrics import NULL_REGISTRY, set_registry
    from repro.obs.schema import BENCH_SCHEMA

    set_registry(NULL_REGISTRY)
    document = {
        "schema": BENCH_SCHEMA,
        "benchmarks": records,
        "metrics": config._bench_registry.snapshot(),
    }
    path = config.getoption("--bench-json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


@pytest.fixture(scope="session")
def example3_result():
    return derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)


@pytest.fixture(scope="session")
def example2_result():
    return derive_protocol(workloads.EXAMPLE2_COUNTING)


@pytest.fixture(scope="session")
def transport_result():
    return derive_protocol(workloads.TRANSPORT_SESSION)
