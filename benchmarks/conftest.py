"""Shared benchmark fixtures.

Each benchmark module regenerates one of the paper's evaluation
artifacts (see DESIGN.md's experiment index); the fixtures here cache the
expensive derivations so timing loops measure only the operation under
study.
"""

import pytest

from repro import workloads
from repro.core.generator import derive_protocol


@pytest.fixture(scope="session")
def example3_result():
    return derive_protocol(workloads.EXAMPLE3_FILE_TRANSFER)


@pytest.fixture(scope="session")
def example2_result():
    return derive_protocol(workloads.EXAMPLE2_COUNTING)


@pytest.fixture(scope="session")
def transport_result():
    return derive_protocol(workloads.TRANSPORT_SESSION)
