"""E1 — specification-language front end throughput.

Times the lexer+parser and the unparser over the paper's examples and
over generated specifications of growing size, and asserts round-trip
correctness inside the timed loop (a benchmark that silently corrupted
its output would be worthless).
"""

import pytest

from repro import workloads
from repro.lotos.parser import parse
from repro.lotos.unparse import unparse


@pytest.mark.parametrize(
    "name,text",
    [
        ("example2", workloads.EXAMPLE2_COUNTING),
        ("example3", workloads.EXAMPLE3_FILE_TRANSFER),
        ("transport", workloads.TRANSPORT_SESSION),
    ],
)
def test_parse_paper_examples(benchmark, name, text):
    spec = benchmark(parse, text)
    assert spec.behaviour is not None


@pytest.mark.parametrize("places,rounds", [(4, 2), (8, 4), (16, 8)])
def test_parse_pipeline_scaling(benchmark, places, rounds):
    text = unparse(workloads.pipeline(places, rounds))

    def run():
        return parse(text)

    spec = benchmark(run)
    assert spec is not None


@pytest.mark.parametrize("alternatives", [4, 16, 64])
def test_parse_choice_ladder_scaling(benchmark, alternatives):
    text = unparse(workloads.choice_ladder(alternatives))
    spec = benchmark(parse, text)
    assert spec is not None


def test_round_trip(benchmark):
    text = workloads.TRANSPORT_SESSION

    def round_trip():
        spec = parse(text)
        rendered = unparse(spec)
        assert parse(rendered) == spec
        return rendered

    benchmark(round_trip)
