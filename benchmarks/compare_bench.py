"""Compare a ``--bench-json`` run against the committed baseline.

The CI ``bench-gate`` job runs::

    pytest benchmarks/ --benchmark-disable --bench-json=bench.json
    python benchmarks/compare_bench.py bench.json

and fails when any benchmark's median wall-time regresses more than
``--threshold`` times (default 2x) over ``benchmarks/baseline_bench.json``.
Medians: a nodeid may appear several times in one document (rerun
sessions concatenated by tooling); per-nodeid samples are reduced to
their median before comparing, so one outlier sample cannot flip the
verdict either way.

Shared-runner clocks are noisy, so two guards keep the gate honest:

* the ratio test only arms once a benchmark costs at least
  ``--min-seconds`` (default 0.05s) in either run — sub-millisecond
  benchmarks jitter far beyond 2x without any code change;
* new benchmarks (no baseline entry) and retired ones (no current
  entry) are reported but never fail the gate — the baseline update
  procedure below handles them.

A delta table goes to stdout and, when ``$GITHUB_STEP_SUMMARY`` is set,
to the job summary as GitHub-flavored markdown.

Updating the baseline (after an intentional perf change or when adding
benchmarks)::

    PYTHONPATH=src python -m pytest benchmarks/ --benchmark-disable \
        --bench-json=bench.json
    python benchmarks/compare_bench.py bench.json --update

then commit ``benchmarks/baseline_bench.json`` with a line in
CHANGES.md saying why the envelope moved.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import sys
from typing import Dict, List, Optional

DEFAULT_BASELINE = pathlib.Path(__file__).parent / "baseline_bench.json"


def load_medians(path: pathlib.Path) -> Dict[str, float]:
    document = json.loads(path.read_text(encoding="utf-8"))
    try:
        from repro.obs.schema import validate_bench

        problems = validate_bench(document)
        if problems:
            raise SystemExit(
                f"{path}: not a valid repro.obs.bench/v1 document:\n  "
                + "\n  ".join(problems)
            )
    except ImportError:  # repro not importable: structural trust
        pass
    samples: Dict[str, List[float]] = {}
    for entry in document["benchmarks"]:
        if entry.get("outcome") == "passed":
            samples.setdefault(entry["nodeid"], []).append(
                float(entry["wall_time_s"])
            )
    return {
        nodeid: statistics.median(times)
        for nodeid, times in samples.items()
    }


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
    min_seconds: float,
) -> List[dict]:
    rows = []
    for nodeid in sorted(set(baseline) | set(current)):
        base = baseline.get(nodeid)
        now = current.get(nodeid)
        if base is None:
            verdict = "new"
        elif now is None:
            verdict = "retired"
        elif (
            now > base * threshold
            and max(now, base) >= min_seconds
        ):
            verdict = "REGRESSION"
        else:
            verdict = "ok"
        rows.append(
            {
                "nodeid": nodeid,
                "baseline_s": base,
                "current_s": now,
                "ratio": (now / base) if base and now else None,
                "verdict": verdict,
            }
        )
    return rows


def _fmt(value: Optional[float], pattern: str = "{:.4f}") -> str:
    return pattern.format(value) if value is not None else "—"


def render_table(rows: List[dict], markdown: bool) -> str:
    header = ["benchmark", "baseline (s)", "current (s)", "ratio", "verdict"]
    body = [
        [
            row["nodeid"],
            _fmt(row["baseline_s"]),
            _fmt(row["current_s"]),
            _fmt(row["ratio"], "{:.2f}x"),
            row["verdict"],
        ]
        for row in rows
    ]
    if markdown:
        lines = [
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        lines += ["| " + " | ".join(cells) + " |" for cells in body]
        return "\n".join(lines)
    widths = [
        max(len(str(cells[i])) for cells in [header] + body)
        for i in range(len(header))
    ]
    lines = [
        "  ".join(str(cells[i]).ljust(widths[i]) for i in range(len(header)))
        for cells in [header] + body
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail CI when a benchmark's median wall-time "
        "regresses past the committed baseline envelope.",
    )
    parser.add_argument("current", help="bench.json produced by --bench-json")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline (default %(default)s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="fail when current median > threshold * baseline median "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="ignore regressions where both medians sit under this "
        "noise floor (default %(default)s)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from the current run and exit 0",
    )
    args = parser.parse_args(argv)

    current_path = pathlib.Path(args.current)
    if args.update:
        pathlib.Path(args.baseline).write_text(
            current_path.read_text(encoding="utf-8"), encoding="utf-8"
        )
        print(f"baseline updated from {current_path}")
        return 0

    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        raise SystemExit(
            f"no baseline at {baseline_path}; seed one with --update"
        )
    baseline = load_medians(baseline_path)
    current = load_medians(current_path)
    rows = compare(baseline, current, args.threshold, args.min_seconds)

    print(render_table(rows, markdown=False))
    regressions = [row for row in rows if row["verdict"] == "REGRESSION"]
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as handle:
            handle.write("## Benchmark gate\n\n")
            handle.write(
                f"{len(rows)} benchmarks, {len(regressions)} regression(s) "
                f"at threshold {args.threshold}x "
                f"(noise floor {args.min_seconds}s)\n\n"
            )
            handle.write(render_table(rows, markdown=True))
            handle.write("\n")

    if regressions:
        print(
            f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
            f"{args.threshold}x the baseline median:",
            file=sys.stderr,
        )
        for row in regressions:
            print(
                f"  {row['nodeid']}: {row['baseline_s']:.4f}s -> "
                f"{row['current_s']:.4f}s ({row['ratio']:.2f}x)",
                file=sys.stderr,
            )
        print(
            "If intentional, refresh the envelope: "
            "python benchmarks/compare_bench.py bench.json --update "
            "(see docs/batch.md).",
            file=sys.stderr,
        )
        return 1
    print(
        f"\nOK: {len(rows)} benchmarks within {args.threshold}x of baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
