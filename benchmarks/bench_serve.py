"""Serve-subsystem benchmarks: request latency and warm-cache throughput.

Two claims worth tracking:

* a warm server answers a derive request far cheaper than a cold CLI
  process (the pool and the parsed stdlib are already paid for), and
* a cache-warm server turns repeated specs into pure disk reads, so
  its throughput is bounded by the wire, not the derivation.

Thread workers keep these numbers about the server, not about fork
cost on the CI runner; the process pool's behavior is covered by
``tests/serve``.
"""

import asyncio
import subprocess
import sys

from repro.serve.loadgen import run_loadgen
from repro.serve.server import DerivationServer, ServeConfig

SPEC = "SPEC a1; exit >> b2; exit ENDSPEC"


def _serve_config(tmp_path, **overrides):
    defaults = dict(
        port=0,
        workers=2,
        worker_kind="thread",
        cache_dir=str(tmp_path / "cache"),
        access_log=False,
    )
    defaults.update(overrides)
    return ServeConfig(**defaults)


def _one_warm_request(tmp_path):
    """One derive request against an already-started, already-warm server."""

    async def main():
        server = DerivationServer(_serve_config(tmp_path))
        await server.start()
        try:
            from repro.serve.client import AsyncServeClient

            client = AsyncServeClient(*server.address)
            await client.post_op("derive", SPEC)  # prime pool + cache
            status, envelope = await client.post_op("derive", SPEC)
            await client.close()
            return status, envelope
        finally:
            await server.shutdown()

    return asyncio.run(main())


def test_serve_warm_request_roundtrip(benchmark, tmp_path):
    status, envelope = benchmark.pedantic(
        _one_warm_request, args=(tmp_path,), rounds=3, iterations=1
    )
    assert status == 200 and envelope["cache"] == "hit"


def test_cold_cli_derive_for_comparison(benchmark, tmp_path):
    """The cost a server amortizes: one whole `repro derive` process."""
    spec_path = tmp_path / "example.lotos"
    spec_path.write_text(SPEC + "\n")

    def cold_cli():
        return subprocess.run(
            [sys.executable, "-m", "repro", "derive", str(spec_path)],
            capture_output=True,
            text=True,
            timeout=120,
        )

    proc = benchmark.pedantic(cold_cli, rounds=3, iterations=1)
    assert proc.returncode == 0, proc.stderr


def _one_warm_request_resilience_off(tmp_path):
    """The warm request again, through a client that explicitly opted
    out of the resilience layer (``retry=None``, ``breaker=None``) with
    chaos disabled — the pre-resilience single-attempt path."""

    async def main():
        server = DerivationServer(_serve_config(tmp_path))
        await server.start()
        try:
            from repro.serve.client import AsyncServeClient

            client = AsyncServeClient(
                *server.address, retry=None, breaker=None
            )
            await client.post_op("derive", SPEC)  # prime pool + cache
            status, envelope = await client.post_op("derive", SPEC)
            await client.close()
            assert client.last_retry is None  # no journey was recorded
            return status, envelope
        finally:
            await server.shutdown()

    return asyncio.run(main())


def test_serve_warm_request_retry_disabled(benchmark, tmp_path):
    """Chaos off + no retry policy must cost what it always cost.

    The perf gate (`compare_bench.py`) holds this within the envelope
    of `test_serve_warm_request_roundtrip`'s history: the resilience
    layer adds no overhead until a policy is installed.
    """
    status, envelope = benchmark.pedantic(
        _one_warm_request_resilience_off, args=(tmp_path,), rounds=3,
        iterations=1,
    )
    assert status == 200 and envelope["cache"] == "hit"


def test_serve_warm_cache_throughput(benchmark, tmp_path):
    """A 64-request loadgen burst against a cache-warm server."""

    async def prime_and_burst():
        server = DerivationServer(_serve_config(tmp_path))
        await server.start()
        try:
            host, port = server.address
            await run_loadgen(host, port, SPEC, connections=1, requests=1)
            return await run_loadgen(
                host, port, SPEC, connections=8, requests=64
            )
        finally:
            await server.shutdown()

    report = benchmark.pedantic(
        lambda: asyncio.run(prime_and_burst()), rounds=1, iterations=1
    )
    assert report["failed"] == 0
    assert report["cache"]["miss"] == 0  # warm means zero derivations
