"""Section 6 extension — error recovery over an unreliable medium.

Measures the cost of the ARQ recovery sublayer relative to the perfect
medium, and the deadlock rate of derived protocols over raw loss (the
reason the sublayer exists).
"""

import pytest

from repro import workloads
from repro.core.generator import derive_protocol
from repro.medium.lossy import ArqMedium, LossyMedium
from repro.runtime import build_system, random_run


@pytest.fixture(scope="module")
def pipeline_result():
    return derive_protocol(workloads.pipeline(3, rounds=2))


def test_reliable_baseline(benchmark, pipeline_result):
    def run():
        system = build_system(pipeline_result.entities)
        result = random_run(system, seed=0, max_steps=5_000)
        assert result.terminated
        return result

    benchmark(run)


@pytest.mark.parametrize("loss_budget", [0, 2, 4])
def test_arq_overhead(benchmark, pipeline_result, loss_budget):
    def run():
        system = build_system(
            pipeline_result.entities, medium=ArqMedium(loss_budget=loss_budget)
        )
        result = random_run(system, seed=0, max_steps=20_000)
        assert result.terminated
        return result

    result = benchmark(run)
    print(f"\n[arq budget={loss_budget}] steps={result.steps}")


def test_lossy_deadlock_rate(benchmark, pipeline_result):
    def run():
        deadlocks = 0
        for seed in range(10):
            system = build_system(
                pipeline_result.entities, medium=LossyMedium(loss_budget=2)
            )
            if random_run(system, seed=seed, max_steps=500).deadlocked:
                deadlocks += 1
        assert deadlocks > 0
        return deadlocks

    deadlocks = benchmark(run)
    print(f"\n[raw loss] {deadlocks}/10 schedules deadlock")
