"""E8 — the Section 4.3 message-complexity table, regenerated.

The paper's analysis (its only quantitative "table"):

    ; or >>              at most 1 message
    []                   at most n messages
    [>                   Rel <= n-1, Interr <= n-1 (n-2 with a nonempty
                         continuation; the paper's own example emits n-1)
    process invocation   n-1 messages
    parallel             a multiplication factor on messages crossing it

Each benchmark sweeps the place count n for one construct family, checks
the measured counts against the bound inside the timed function, and the
printed summary (run pytest with -s) is the reproduced table.
"""

import pytest

from repro import workloads
from repro.core.complexity import analyze, bound_for
from repro.core.generator import derive_protocol


def _report(spec):
    result = derive_protocol(spec)
    return analyze(result), result


@pytest.mark.parametrize("places", [2, 4, 8])
def test_sequence_messages_per_hop(benchmark, places):
    spec = workloads.pipeline(places, rounds=1)

    def run():
        report, _ = _report(spec)
        assert report.total_messages == places - 1
        assert report.violations() == []
        return report

    report = benchmark(run)
    print(f"\n[pipeline n={places}] {report.per_rule()}")


@pytest.mark.parametrize("places", [3, 5, 7])
def test_parallel_multiplication(benchmark, places):
    spec = workloads.fan_out_join(places)

    def run():
        report, _ = _report(spec)
        # start >> (n-2 branches) >> join: each enable fans out.
        assert report.per_rule()["enable"] == 2 * (places - 2)
        return report

    report = benchmark(run)
    print(f"\n[fan-out/join n={places}] {report.per_rule()}")


@pytest.mark.parametrize("alternatives", [2, 4, 8])
def test_choice_bound(benchmark, alternatives):
    spec = workloads.choice_ladder(alternatives)

    def run():
        report, result = _report(spec)
        n = len(result.attrs.all_places)
        for (rule, node), count in report.by_construct.items():
            if rule == "choice":
                assert count.sends <= bound_for("choice", n)
        return report

    report = benchmark(run)
    print(f"\n[choice k={alternatives}] {report.per_rule()}")


@pytest.mark.parametrize("places", [2, 3, 5])
def test_disable_bound(benchmark, places):
    spec = workloads.interrupt_stack(places)

    def run():
        report, result = _report(spec)
        n = len(result.attrs.all_places)
        per_rule = report.per_rule()
        assert per_rule.get("rel", 0) <= n - 1
        assert per_rule.get("interr", 0) <= n - 1
        # The paper's total for one [>: 2n-3 under its assumptions;
        # with an exit-continuation interrupt it is 2n-2.
        assert per_rule.get("rel", 0) + per_rule.get("interr", 0) <= 2 * n - 2
        return report

    report = benchmark(run)
    print(f"\n[interrupt n={places}] {report.per_rule()}")


@pytest.mark.parametrize("length", [2, 4, 8])
def test_process_invocation_bound(benchmark, length):
    spec = workloads.process_chain(length)

    def run():
        report, result = _report(spec)
        n = len(result.attrs.all_places)
        for (rule, node), count in report.by_construct.items():
            if rule == "proc":
                assert count.sends <= n - 1
        return report

    report = benchmark(run)
    print(f"\n[process chain k={length}] {report.per_rule()}")


def test_example3_full_table(benchmark, example3_result):
    def run():
        return analyze(example3_result)

    report = benchmark(run)
    print("\n[Example 3] " + report.table().replace("\n", "\n[Example 3] "))
    assert report.total_messages == 14
