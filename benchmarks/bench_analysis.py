"""E14 — reachability analysis throughput; E18 — lint throughput.

Times the full design-error audit (deadlocks, blocked receptions, dead
code) over composed systems of growing size, and the static-analysis
front end (``repro lint``: all rules plus the restriction passthrough)
over the largest generated service specifications.

Also the obs overhead guard: derivation with the tracer disabled (the
process default) must cost nothing measurable over the instrumented
code paths — the no-op tracer does no clock reads, no string
formatting, no allocation.
"""

import time

import pytest

from repro import workloads
from repro.analysis import analyze_protocol
from repro.analysis.lint import lint_spec, lint_text
from repro.core.generator import derive_protocol
from repro.lotos.unparse import unparse


@pytest.mark.parametrize("places", [3, 4, 5])
def test_analyze_pipeline(benchmark, places):
    result = derive_protocol(workloads.pipeline(places, rounds=2))

    def run():
        report = analyze_protocol(result.entities)
        assert report.clean
        return report

    report = benchmark(run)
    print(f"\n[analysis n={places}] states={report.states_explored}")


@pytest.mark.parametrize("places", [4, 6, 8])
def test_lint_pipeline(benchmark, places):
    """Lint a parsed pipeline spec of growing width (all rules)."""
    spec = workloads.pipeline(places, rounds=4)

    def run():
        return lint_spec(spec)

    result = benchmark(run)
    assert result.ok
    print(f"\n[lint n={places}] diagnostics={len(result)}")


def test_lint_text_largest_chain(benchmark):
    """End-to-end text lint (parse + rules) on the largest workload."""
    text = unparse(workloads.process_chain(12, places=3))

    def run():
        return lint_text(text, source="process_chain_12")

    result = benchmark(run)
    assert result.ok


def test_analyze_example3(benchmark, example3_result):
    def run():
        return analyze_protocol(
            example3_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks


def test_analyze_transport(benchmark, transport_result):
    def run():
        return analyze_protocol(
            transport_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks


# ----------------------------------------------------------------------
# Obs overhead guard
# ----------------------------------------------------------------------
def _median_seconds(fn, repeats=9):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    samples.sort()
    return samples[len(samples) // 2]


def test_derive_overhead_tracing_disabled(benchmark):
    """The default (no-op) tracer path of the instrumented pipeline."""
    text = workloads.EXAMPLE3_FILE_TRANSFER
    result = benchmark(lambda: derive_protocol(text))
    assert result.places == [1, 2, 3]


def test_derive_overhead_tracing_enabled(benchmark):
    """Same derivation under a live tracer + registry, for comparison."""
    from repro.obs import observe

    text = workloads.EXAMPLE3_FILE_TRANSFER

    def run():
        with observe():
            return derive_protocol(text)

    result = benchmark(run)
    assert result.places == [1, 2, 3]


def test_disabled_mode_overhead_is_unmeasurable():
    """Disabled-mode derivation must not be slower than the traced one.

    The margin is deliberately generous (1.5x + 5 ms) so scheduler noise
    cannot flake the suite; the *crisp* zero-cost property — no clock
    reads on the disabled path — is asserted exactly in
    ``tests/obs/test_spans.py``.
    """
    from repro.obs import observe

    text = workloads.EXAMPLE3_FILE_TRANSFER
    derive_protocol(text)  # warm parser/import caches

    def enabled():
        with observe():
            derive_protocol(text)

    disabled_s = _median_seconds(lambda: derive_protocol(text))
    enabled_s = _median_seconds(enabled)
    assert disabled_s <= enabled_s * 1.5 + 0.005, (
        f"disabled-mode derivation ({disabled_s * 1e3:.2f} ms) is slower "
        f"than traced derivation ({enabled_s * 1e3:.2f} ms): the no-op "
        "path is doing real work"
    )
