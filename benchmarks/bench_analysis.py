"""E14 — reachability analysis throughput; E18 — lint throughput.

Times the full design-error audit (deadlocks, blocked receptions, dead
code) over composed systems of growing size, and the static-analysis
front end (``repro lint``: all rules plus the restriction passthrough)
over the largest generated service specifications.
"""

import pytest

from repro import workloads
from repro.analysis import analyze_protocol
from repro.analysis.lint import lint_spec, lint_text
from repro.core.generator import derive_protocol
from repro.lotos.unparse import unparse


@pytest.mark.parametrize("places", [3, 4, 5])
def test_analyze_pipeline(benchmark, places):
    result = derive_protocol(workloads.pipeline(places, rounds=2))

    def run():
        report = analyze_protocol(result.entities)
        assert report.clean
        return report

    report = benchmark(run)
    print(f"\n[analysis n={places}] states={report.states_explored}")


@pytest.mark.parametrize("places", [4, 6, 8])
def test_lint_pipeline(benchmark, places):
    """Lint a parsed pipeline spec of growing width (all rules)."""
    spec = workloads.pipeline(places, rounds=4)

    def run():
        return lint_spec(spec)

    result = benchmark(run)
    assert result.ok
    print(f"\n[lint n={places}] diagnostics={len(result)}")


def test_lint_text_largest_chain(benchmark):
    """End-to-end text lint (parse + rules) on the largest workload."""
    text = unparse(workloads.process_chain(12, places=3))

    def run():
        return lint_text(text, source="process_chain_12")

    result = benchmark(run)
    assert result.ok


def test_analyze_example3(benchmark, example3_result):
    def run():
        return analyze_protocol(
            example3_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks


def test_analyze_transport(benchmark, transport_result):
    def run():
        return analyze_protocol(
            transport_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks
