"""E14 — reachability analysis throughput.

Times the full design-error audit (deadlocks, blocked receptions, dead
code) over composed systems of growing size.
"""

import pytest

from repro import workloads
from repro.analysis import analyze_protocol
from repro.core.generator import derive_protocol


@pytest.mark.parametrize("places", [3, 4, 5])
def test_analyze_pipeline(benchmark, places):
    result = derive_protocol(workloads.pipeline(places, rounds=2))

    def run():
        report = analyze_protocol(result.entities)
        assert report.clean
        return report

    report = benchmark(run)
    print(f"\n[analysis n={places}] states={report.states_explored}")


def test_analyze_example3(benchmark, example3_result):
    def run():
        return analyze_protocol(
            example3_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks


def test_analyze_transport(benchmark, transport_result):
    def run():
        return analyze_protocol(
            transport_result.entities,
            discipline="selective",
            max_states=4_000,
            use_occurrences=False,
        )

    report = benchmark(run)
    assert not report.deadlocks
