"""E10 — derived protocol vs the Section 3 baselines.

The paper motivates distributed derivation by two claims about the
centralized "trivial solution": it "requires many synchronization
messages and the load for the server PE becomes large".  These
benchmarks measure both claims on pipeline workloads, plus the naive
projection's failure rate (the reason synchronization messages exist at
all).

Run with -s to see the comparison rows; the assertions encode the shape
the paper predicts (distributed wins on messages and on server load as
soon as the work actually moves between places).
"""

import pytest

from repro import workloads
from repro.core.centralized import derive_centralized
from repro.core.generator import derive_protocol
from repro.lotos.events import ReceiveAction, SendAction
from repro.runtime import build_system, check_run, random_run
from repro.runtime.executor import run_many


def _message_total(entities, runs=10, max_steps=4_000):
    system = build_system(entities)
    sent = 0
    events = 0
    for run in run_many(system, runs=runs, max_steps=max_steps):
        assert run.terminated
        sent += run.messages_sent
        events += len(run.trace)
    return sent, events


@pytest.mark.parametrize("places,rounds", [(3, 2), (4, 3), (5, 4)])
def test_messages_distributed_vs_centralized(benchmark, places, rounds):
    spec = workloads.pipeline(places, rounds)
    distributed = derive_protocol(spec)
    centralized = derive_centralized(spec)

    def run():
        dist_sent, dist_events = _message_total(distributed.entities, runs=3)
        cent_sent, cent_events = _message_total(centralized.entities, runs=3)
        assert dist_events == cent_events  # same service happened
        assert dist_sent < cent_sent  # the paper's claim, measured
        return dist_sent, cent_sent

    dist_sent, cent_sent = benchmark(run)
    print(
        f"\n[pipeline n={places} rounds={rounds}] distributed={dist_sent} "
        f"centralized={cent_sent} messages "
        f"(ratio {cent_sent / dist_sent:.2f}x)"
    )


@pytest.mark.parametrize("places", [3, 5])
def test_server_load_concentration(benchmark, places):
    """Claim 2: 'the load for the server PE becomes large'.

    Measured as the fraction of message endpoints touching the busiest
    entity: ~0.5 for a pipeline's distributed derivation (each hop has
    two endpoints spread around the ring), 1.0 for the centralized one.
    """
    spec = workloads.pipeline(places, rounds=3)
    distributed = derive_protocol(spec)
    centralized = derive_centralized(spec)

    def endpoint_share(entities, server_candidate):
        system = build_system(entities, hide=False)
        touches = {}
        total = 0
        state = system.initial
        import random

        rng = random.Random(0)
        for _ in range(4_000):
            transitions = system.transitions(state)
            if not transitions:
                break
            label, state = transitions[rng.randrange(len(transitions))]
            if isinstance(label, (SendAction, ReceiveAction)):
                total += 1
                for endpoint in (
                    (label.src, label.dest)
                    if isinstance(label, SendAction)
                    else (label.src, label.dest)
                ):
                    touches[endpoint] = touches.get(endpoint, 0) + 1
        busiest = max(touches.values()) if touches else 0
        return busiest / (2 * total) if total else 0.0

    def run():
        dist_share = endpoint_share(distributed.entities, None)
        cent_share = endpoint_share(centralized.entities, centralized.server)
        assert cent_share > dist_share
        return dist_share, cent_share

    dist_share, cent_share = benchmark(run)
    print(
        f"\n[server load n={places}] busiest-entity share: "
        f"distributed={dist_share:.2f} centralized={cent_share:.2f}"
    )


@pytest.mark.parametrize("places", [2, 3])
def test_naive_projection_failure_rate(benchmark, places):
    """The naive baseline violates the service under most schedules."""
    spec = workloads.pipeline(places, rounds=2)
    naive = derive_protocol(spec, emit_sync=False)

    def run():
        system = build_system(naive.entities)
        failures = 0
        total = 20
        for seed in range(total):
            result = random_run(system, seed=seed, max_steps=2_000)
            if not check_run(naive.service, result):
                failures += 1
        assert failures > 0
        return failures, total

    failures, total = benchmark(run)
    print(f"\n[naive n={places}] {failures}/{total} schedules violate the service")


def test_derivation_cost_distributed_vs_centralized(benchmark):
    spec = workloads.pipeline(4, rounds=2)

    def run():
        return derive_protocol(spec), derive_centralized(spec)

    benchmark(run)
