"""E9 — cost of checking the Section 5 theorem.

Times the full verification stack: LTS construction for both sides,
weak-bisimulation saturation + refinement (finite case), bounded
weak-trace comparison (recursive case), and the independent term-level
Section 5.2 composition.
"""

import pytest

from repro import workloads
from repro.core.generator import derive_protocol
from repro.lotos.equivalence import observationally_congruent, weak_bisimilar
from repro.lotos.lts import build_lts
from repro.lotos.semantics import Semantics
from repro.runtime.system import build_system
from repro.verification.checker import verify_derivation
from repro.verification.composition import compose_term

FINITE = "SPEC (a1; exit ||| b2; exit) >> c3; exit ENDSPEC"


def test_verify_finite_service(benchmark):
    result = derive_protocol(FINITE)

    def run():
        report = verify_derivation(result)
        assert report.equivalent and report.congruent
        return report

    benchmark(run)


@pytest.mark.parametrize("depth", [4, 6, 8])
def test_verify_recursive_bounded(benchmark, example2_result, depth):
    def run():
        report = verify_derivation(example2_result, trace_depth=depth)
        assert report.equivalent
        return report

    benchmark(run)


@pytest.mark.parametrize("places", [2, 3, 4])
def test_verify_pipeline(benchmark, places):
    result = derive_protocol(workloads.pipeline(places, rounds=1))

    def run():
        report = verify_derivation(result)
        assert report.equivalent
        return report

    benchmark(run)


def test_system_lts_construction(benchmark, example3_result):
    def run():
        system = build_system(
            example3_result.entities,
            discipline="selective",
            require_empty_at_exit=False,
        )
        return build_lts(system.initial, system, max_states=30_000, on_limit="truncate")

    lts = benchmark(run)
    assert lts.num_states > 10


def test_weak_bisimulation_check(benchmark):
    result = derive_protocol(FINITE)
    system = build_system(result.entities)
    system_lts = build_lts(system.initial, system, max_states=10_000)
    semantics, root = Semantics.of_specification(result.prepared, bind_occurrences=False)
    service_lts = build_lts(root, semantics)

    def run():
        assert weak_bisimilar(service_lts, system_lts)
        assert observationally_congruent(service_lts, system_lts)

    benchmark(run)


def test_term_level_composition(benchmark):
    result = derive_protocol(FINITE)

    def run():
        term, environment, gates = compose_term(result.entities)
        lts = build_lts(
            term, Semantics(environment, bind_occurrences=False), max_states=60_000
        )
        return lts

    lts = benchmark(run)
    assert lts.complete


def test_tau_chain_compression(benchmark):
    """LTS reduction cost and effect (repro.lotos.reduction)."""
    from repro.lotos.reduction import compress_tau_chains

    result = derive_protocol(
        "SPEC begin1; ready2; ready3; ((commit1; apply2; apply3; done1; exit)"
        " [] (abort1; undo2; undo3; done1; exit)) ENDSPEC"
    )
    system = build_system(result.entities)
    lts = build_lts(system.initial, system, max_states=30_000)

    def run():
        return compress_tau_chains(lts)

    reduced = benchmark(run)
    assert reduced.num_states < lts.num_states
    print(f"\n[compression] {lts.num_states} -> {reduced.num_states} states")
