"""Setup shim: metadata lives in pyproject.toml.

The execution environment has no network and no `wheel` package, so PEP
660 editable installs fail; `python setup.py develop` (or `pip install -e .`
on newer toolchains) both work.
"""

from setuptools import setup

setup()
